// Deterministic fault injection (fleet/faults.hpp): schedule expansion,
// kernel fault semantics, scenario serde of the fault block, and the
// graceful-degradation invariant — a faulted campaign must stay
// bit-identical across serial, pooled, and serialized-partial-merge
// execution, exactly like a healthy one (its own golden fixture pins the
// values), while a zero-fault spec keeps rendering the pre-fault columns.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/threadpool.hpp"
#include "core/ewma.hpp"
#include "fleet/faults.hpp"
#include "fleet/partial.hpp"
#include "fleet/runner.hpp"
#include "mgmt/node_sim_kernel.hpp"
#include "solar/sites.hpp"
#include "solar/synth.hpp"

namespace shep {
namespace {

FaultSpec ChaosSpec() {
  FaultSpec faults;
  faults.outage_rate_per_day = 2.0;
  faults.outage_mean_slots = 6.0;
  faults.dropout_rate_per_day = 1.0;
  faults.dropout_mean_slots = 4.0;
  faults.panel_decay_per_day = 0.001;
  faults.battery_aging_per_day = 0.002;
  return faults;
}

// ---- FaultSchedule expansion ----------------------------------------------

TEST(FaultSchedule, SameSeedSameScheduleDifferentSeedDiffers) {
  const FaultSpec faults = ChaosSpec();
  FaultSchedule a, b, c;
  BuildFaultSchedule(faults, 0xABCD, 30, 48, a);
  BuildFaultSchedule(faults, 0xABCD, 30, 48, b);
  BuildFaultSchedule(faults, 0xABCE, 30, 48, c);

  ASSERT_EQ(a.outages.size(), b.outages.size());
  for (std::size_t i = 0; i < a.outages.size(); ++i) {
    EXPECT_EQ(a.outages[i].begin, b.outages[i].begin);
    EXPECT_EQ(a.outages[i].end, b.outages[i].end);
  }
  ASSERT_EQ(a.dropouts.size(), b.dropouts.size());
  for (std::size_t i = 0; i < a.dropouts.size(); ++i) {
    EXPECT_EQ(a.dropouts[i].begin, b.dropouts[i].begin);
    EXPECT_EQ(a.dropouts[i].end, b.dropouts[i].end);
  }
  // A different fault seed must draw a different outage pattern (at two
  // expected arrivals per day over 30 days a collision is astronomically
  // unlikely).
  bool differs = a.outages.size() != c.outages.size();
  for (std::size_t i = 0; !differs && i < a.outages.size(); ++i) {
    differs = a.outages[i].begin != c.outages[i].begin ||
              a.outages[i].end != c.outages[i].end;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultSchedule, WindowsAreSortedDisjointAndInHorizon) {
  FaultSchedule schedule;
  BuildFaultSchedule(ChaosSpec(), 7, 30, 48, schedule);
  const std::uint32_t total = 30u * 48u;
  EXPECT_FALSE(schedule.outages.empty());
  EXPECT_FALSE(schedule.dropouts.empty());
  for (const std::vector<FaultWindow>* windows :
       {&schedule.outages, &schedule.dropouts}) {
    std::uint32_t last_end = 0;
    for (const FaultWindow& w : *windows) {
      EXPECT_LT(w.begin, w.end);
      EXPECT_GE(w.begin, last_end);
      EXPECT_LT(w.begin, total);  // windows start inside the horizon.
      last_end = w.end;
    }
  }
}

TEST(FaultSchedule, DegradationFactorsAreRunningProducts) {
  FaultSchedule schedule;
  BuildFaultSchedule(ChaosSpec(), 7, 30, 48, schedule);
  ASSERT_EQ(schedule.panel_factor.size(), 30u);
  ASSERT_EQ(schedule.capacity_factor.size(), 30u);
  EXPECT_EQ(schedule.panel_factor[0], 1.0);
  EXPECT_EQ(schedule.capacity_factor[0], 1.0);
  for (std::size_t d = 1; d < 30; ++d) {
    EXPECT_EQ(schedule.panel_factor[d],
              schedule.panel_factor[d - 1] * (1.0 - 0.001));
    EXPECT_EQ(schedule.capacity_factor[d],
              schedule.capacity_factor[d - 1] * (1.0 - 0.002));
  }
  // Default recovery window resolves to one day.
  EXPECT_EQ(schedule.recovery_window_slots, 48u);
}

// ---- Kernel fault semantics -----------------------------------------------

SlotSeries MakeSeries(const char* site, std::size_t days) {
  SynthOptions opt;
  opt.days = days;
  return SlotSeries(SynthesizeTrace(SiteByCode(site), opt), 48);
}

NodeSimConfig MakeConfig() {
  NodeSimConfig c;
  c.duty.slot_seconds = 1800.0;
  c.duty.active_power_w = 0.40;
  c.storage.capacity_j = 4000.0;
  c.warmup_days = 2;
  return c;
}

/// A schedule with no fault mass at all: empty windows, unit factors.
FaultSchedule IdleSchedule(std::size_t days) {
  FaultSchedule schedule;
  schedule.panel_factor.assign(days, 1.0);
  schedule.capacity_factor.assign(days, 1.0);
  schedule.recovery_window_slots = 48;
  return schedule;
}

TEST(FaultKernel, EmptyScheduleReproducesHealthyRunBitForBit) {
  const SlotSeries series = MakeSeries("ORNL", 10);
  const NodeSimConfig config = MakeConfig();
  Ewma healthy_p(0.5, 48);
  const NodeSimResult healthy =
      SimulateNodeKernel(healthy_p, series, config);
  const FaultSchedule schedule = IdleSchedule(10);
  Ewma faulted_p(0.5, 48);
  const NodeSimResult faulted = SimulateNodeKernel(
      faulted_p, series, config, NoSlotProbe{}, FaultModel(schedule));

  EXPECT_TRUE(faulted.faulted);
  EXPECT_FALSE(healthy.faulted);
  EXPECT_EQ(faulted.downtime_slots, 0u);
  EXPECT_EQ(faulted.recoveries, 0u);
  EXPECT_EQ(faulted.slots, healthy.slots);
  EXPECT_EQ(faulted.violations, healthy.violations);
  EXPECT_EQ(faulted.violation_rate, healthy.violation_rate);
  EXPECT_EQ(faulted.mean_duty, healthy.mean_duty);
  EXPECT_EQ(faulted.duty_stddev, healthy.duty_stddev);
  EXPECT_EQ(faulted.overflow_j, healthy.overflow_j);
  EXPECT_EQ(faulted.delivered_j, healthy.delivered_j);
  EXPECT_EQ(faulted.harvested_j, healthy.harvested_j);
  EXPECT_EQ(faulted.min_level_fraction, healthy.min_level_fraction);
  EXPECT_EQ(faulted.mape, healthy.mape);
}

TEST(FaultKernel, OutageSuspendsScoringAndOpensRecoveryWindow) {
  const SlotSeries series = MakeSeries("ORNL", 10);
  const NodeSimConfig config = MakeConfig();
  Ewma healthy_p(0.5, 48);
  const NodeSimResult healthy =
      SimulateNodeKernel(healthy_p, series, config);

  FaultSchedule schedule = IdleSchedule(10);
  // One six-slot outage well past the two warm-up days (slot 96 onward).
  schedule.outages.push_back({120, 126});
  Ewma faulted_p(0.5, 48);
  const NodeSimResult faulted = SimulateNodeKernel(
      faulted_p, series, config, NoSlotProbe{}, FaultModel(schedule));

  EXPECT_EQ(faulted.downtime_slots, 6u);
  EXPECT_EQ(faulted.recoveries, 1u);
  EXPECT_EQ(faulted.slots, healthy.slots - 6u);
  // The recovery window (48 slots from slot 126) is fully inside the
  // scored horizon and uninterrupted, so every one of its slots counts.
  EXPECT_EQ(faulted.post_recovery_slots, 48u);
  EXPECT_LE(faulted.post_recovery_violations, faulted.post_recovery_slots);
}

TEST(FaultKernel, DropoutKeepsEverySlotScored) {
  const SlotSeries series = MakeSeries("ORNL", 10);
  const NodeSimConfig config = MakeConfig();
  Ewma healthy_p(0.5, 48);
  const NodeSimResult healthy =
      SimulateNodeKernel(healthy_p, series, config);

  FaultSchedule schedule = IdleSchedule(10);
  // Midday on day 5 (slot 24 of 48): the held observation differs from the
  // live one — a night window would hold 0 W over 0 W and prove nothing.
  schedule.dropouts.push_back({264, 268});
  Ewma faulted_p(0.5, 48);
  const NodeSimResult faulted = SimulateNodeKernel(
      faulted_p, series, config, NoSlotProbe{}, FaultModel(schedule));

  // A dropout degrades the predictor's input, never the node's uptime.
  EXPECT_EQ(faulted.slots, healthy.slots);
  EXPECT_EQ(faulted.downtime_slots, 0u);
  EXPECT_EQ(faulted.recoveries, 0u);
  // The held observation must actually have changed the prediction stream.
  EXPECT_NE(faulted.mape, healthy.mape);
}

TEST(FaultKernel, PanelDecayScalesHarvestExactly) {
  const SlotSeries series = MakeSeries("ORNL", 10);
  const NodeSimConfig config = MakeConfig();
  Ewma healthy_p(0.5, 48);
  const NodeSimResult healthy =
      SimulateNodeKernel(healthy_p, series, config);

  FaultSchedule schedule = IdleSchedule(10);
  // A power-of-two factor multiplies exactly, so the scored harvest must
  // halve bit for bit.
  schedule.panel_factor.assign(10, 0.5);
  Ewma faulted_p(0.5, 48);
  const NodeSimResult faulted = SimulateNodeKernel(
      faulted_p, series, config, NoSlotProbe{}, FaultModel(schedule));
  EXPECT_EQ(faulted.harvested_j, 0.5 * healthy.harvested_j);
}

TEST(FaultKernel, BatteryAgingShrinksUsableCapacity) {
  EnergyStorage store(StorageParams{}, /*initial_level_j=*/400.0);
  store.SetCapacity(100.0);
  EXPECT_EQ(store.params().capacity_j, 100.0);
  // Charge above the aged capacity is unusable and drops from the level —
  // capacity fade is not overflow, so the lifetime counters stay put.
  EXPECT_EQ(store.level_j(), 100.0);
  EXPECT_EQ(store.total_overflow_j(), 0.0);
  EXPECT_THROW(store.SetCapacity(0.0), std::exception);
}

// ---- Scenario serde of the fault block ------------------------------------

ScenarioSpec FaultedScenario() {
  ScenarioSpec spec;
  spec.name = "faulted_golden";
  spec.sites = {"HSU", "PFCI"};
  PredictorSpec wcma;
  wcma.kind = PredictorKind::kWcma;
  wcma.wcma.alpha = 0.7;
  wcma.wcma.days = 10;
  wcma.wcma.slots_k = 3;
  PredictorSpec persistence;
  persistence.kind = PredictorKind::kPersistence;
  spec.predictors = {wcma, persistence};
  spec.storage_tiers_j = {1500.0, 6000.0};
  spec.nodes_per_cell = 3;
  spec.days = 30;
  spec.slots_per_day = 48;
  spec.seed = 2026;
  spec.node.duty.active_power_w = 0.40;
  spec.node.warmup_days = 20;
  spec.initial_level_jitter = 0.2;
  spec.faults.outage_rate_per_day = 0.2;
  spec.faults.outage_mean_slots = 6.0;
  spec.faults.dropout_rate_per_day = 0.5;
  spec.faults.dropout_mean_slots = 4.0;
  spec.faults.panel_decay_per_day = 0.001;
  spec.faults.battery_aging_per_day = 0.002;
  return spec;
}

TEST(FaultSpecSerde, RoundTripIsExact) {
  const ScenarioSpec spec = FaultedScenario();
  const std::string text = spec.Describe();
  const ScenarioSpec back = ParseScenarioSpec(text);
  EXPECT_EQ(back.Describe(), text);
  EXPECT_EQ(back.faults.outage_rate_per_day, spec.faults.outage_rate_per_day);
  EXPECT_EQ(back.faults.outage_mean_slots, spec.faults.outage_mean_slots);
  EXPECT_EQ(back.faults.dropout_rate_per_day,
            spec.faults.dropout_rate_per_day);
  EXPECT_EQ(back.faults.dropout_mean_slots, spec.faults.dropout_mean_slots);
  EXPECT_EQ(back.faults.panel_decay_per_day, spec.faults.panel_decay_per_day);
  EXPECT_EQ(back.faults.battery_aging_per_day,
            spec.faults.battery_aging_per_day);
  EXPECT_EQ(back.faults.recovery_window_slots,
            spec.faults.recovery_window_slots);
}

TEST(FaultSpecSerde, RejectsMalformedFaultBlocks) {
  // Negative arrival rate.
  {
    ScenarioSpec spec = FaultedScenario();
    spec.faults.outage_rate_per_day = -0.5;
    EXPECT_THROW((void)ParseScenarioSpec(spec.Describe()), std::exception);
  }
  // Positive rate with a sub-slot mean duration.
  {
    ScenarioSpec spec = FaultedScenario();
    spec.faults.outage_mean_slots = 0.0;
    EXPECT_THROW((void)ParseScenarioSpec(spec.Describe()), std::exception);
  }
  // Dropout windows longer than a day are outages, not dropouts.
  {
    ScenarioSpec spec = FaultedScenario();
    spec.faults.dropout_mean_slots = 100.0;  // slots_per_day is 48.
    EXPECT_THROW((void)ParseScenarioSpec(spec.Describe()), std::exception);
  }
  // Aging a full capacity per day (or more) leaves nothing to simulate.
  {
    ScenarioSpec spec = FaultedScenario();
    spec.faults.battery_aging_per_day = 1.0;
    EXPECT_THROW((void)ParseScenarioSpec(spec.Describe()), std::exception);
  }
  // Trailing junk after end-scenario: a truncated or concatenated wire
  // payload must not parse as a valid spec.
  {
    const std::string text = FaultedScenario().Describe() + "junk\n";
    EXPECT_THROW((void)ParseScenarioSpec(text), std::exception);
  }
  // Pre-fault (v1) spec text is rejected up front.
  {
    std::string text = FaultedScenario().Describe();
    text.replace(text.find("v2"), 2, "v1");
    EXPECT_THROW((void)ParseScenarioSpec(text), std::exception);
  }
}

TEST(FaultSpecSerde, ZeroFaultSpecStaysHealthy) {
  ScenarioSpec spec = FaultedScenario();
  spec.faults = FaultSpec{};
  EXPECT_FALSE(spec.faults.any());
  const ScenarioSpec back = ParseScenarioSpec(spec.Describe());
  EXPECT_FALSE(back.faults.any());
  // The rendered summary of a healthy run carries no fault columns (the
  // byte-exact CSV is pinned by test_fleet_golden).
  const FleetSummary summary = RunFleet(spec);
  EXPECT_EQ(summary.ToCsv().find("availability"), std::string::npos);
  for (const CellAccumulator& s : summary.stats) {
    EXPECT_FALSE(s.has_fault_stats());
  }
}

// ---- The faulted golden fixture -------------------------------------------

// Committed expectation for FaultedScenario(); regenerate like the healthy
// golden fixture (run the spec, paste ToCsv()) and justify the diff.
constexpr const char* kFaultedGoldenCsv =
    "site,predictor,storage_j,nodes,viol_mean,viol_p50,viol_p95,viol_max,mean"
    "_duty,wasted_harvest,min_soc,mape,cyc_mean,cyc_p95,ops_mean,availability"
    ",downtime_slots,recoveries,postrec_viol\n"
    "HSU,WCMA,1500,3,0.428936,0.470703,0.543933,0.543933,0.278541,0.075110,"
    "0.000000,0.178591,n/a,n/a,n/a,0.972860,39,3,0.395833\n"
    "HSU,WCMA,6000,3,0.018947,0.002930,0.056842,0.056842,0.274455,0.015082,"
    "0.055097,0.198660,n/a,n/a,n/a,0.974948,36,5,0.000000\n"
    "HSU,Persistence,1500,3,0.541488,0.583984,0.613734,0.613734,0.283604,"
    "0.077554,0.000000,0.237223,n/a,n/a,n/a,0.974948,36,6,0.701686\n"
    "HSU,Persistence,6000,3,0.017730,0.002930,0.053191,0.053191,0.265392,"
    "0.002863,0.136816,0.214656,n/a,n/a,n/a,0.970077,43,8,0.000000\n"
    "PFCI,WCMA,1500,3,0.248981,0.275391,0.340292,0.340292,0.338507,0.225804,"
    "0.000000,0.126065,n/a,n/a,n/a,0.956159,63,4,0.143056\n"
    "PFCI,WCMA,6000,3,0.000000,0.000000,0.000000,0.000000,0.375304,0.136312,"
    "0.279306,0.132440,n/a,n/a,n/a,0.951983,69,11,0.000000\n"
    "PFCI,Persistence,1500,3,0.403061,0.373047,0.467641,0.467641,0.342157,"
    "0.218805,0.000000,0.139349,n/a,n/a,n/a,0.990257,14,3,0.608252\n"
    "PFCI,Persistence,6000,3,0.000000,0.000000,0.000000,0.000000,0.360130,"
    "0.146521,0.257591,0.151272,n/a,n/a,n/a,0.999304,1,1,0.000000\n";

// (violations, scored_slots, downtime_slots, recoveries) per cell.
constexpr std::array<std::array<std::uint64_t, 4>, 8> kFaultedGoldenTotals{{
    {598u, 1398u, 39u, 3u},
    {27u, 1401u, 36u, 5u},
    {757u, 1401u, 36u, 6u},
    {25u, 1394u, 43u, 8u},
    {343u, 1374u, 63u, 4u},
    {0u, 1368u, 69u, 11u},
    {574u, 1423u, 14u, 3u},
    {0u, 1436u, 1u, 1u},
}};

TEST(FaultedGolden, SerialPooledAndPartialMergeAreBitIdentical) {
  const ScenarioSpec spec = FaultedScenario();
  const FleetSummary serial = RunFleet(spec);

  ThreadPool pool;
  FleetRunOptions pooled_options;
  pooled_options.pool = &pool;
  const FleetSummary pooled = RunFleet(spec, pooled_options);
  EXPECT_EQ(pooled.ToCsv(), serial.ToCsv());
  EXPECT_EQ(pooled.ToTable(), serial.ToTable());

  // Three partial runs, serialized across a pretend process boundary and
  // merged — the distributed path of a faulted campaign.
  const ShardPlan plan = BuildShardPlan(spec, /*shard_size=*/4);
  std::vector<std::vector<std::size_t>> assignment(3);
  for (std::size_t i = 0; i < plan.shards.size(); ++i) {
    assignment[i % 3].push_back(i);
  }
  std::vector<FleetPartial> partials;
  for (const std::vector<std::size_t>& shards : assignment) {
    const FleetPartial partial = RunFleetShards(plan, shards, {});
    partials.push_back(FleetPartial::Parse(partial.Serialize()));
  }
  const FleetSummary merged = MergeFleetPartials(plan, partials);
  EXPECT_EQ(merged.ToCsv(), serial.ToCsv());
  EXPECT_EQ(merged.ToTable(), serial.ToTable());
  for (std::size_t i = 0; i < serial.stats.size(); ++i) {
    EXPECT_EQ(merged.stats[i].violations, serial.stats[i].violations);
    EXPECT_EQ(merged.stats[i].scored_slots, serial.stats[i].scored_slots);
    EXPECT_EQ(merged.stats[i].downtime_slots, serial.stats[i].downtime_slots);
    EXPECT_EQ(merged.stats[i].recoveries, serial.stats[i].recoveries);
  }
}

TEST(FaultedGolden, CsvMatchesCommittedFixture) {
  const FleetSummary summary = RunFleet(FaultedScenario());
  EXPECT_EQ(summary.ToCsv(), kFaultedGoldenCsv);
}

TEST(FaultedGolden, TotalsMatchCommittedFixture) {
  const FleetSummary summary = RunFleet(FaultedScenario());
  ASSERT_EQ(summary.stats.size(), kFaultedGoldenTotals.size());
  for (std::size_t i = 0; i < kFaultedGoldenTotals.size(); ++i) {
    EXPECT_EQ(summary.stats[i].violations, kFaultedGoldenTotals[i][0])
        << "cell " << i;
    EXPECT_EQ(summary.stats[i].scored_slots, kFaultedGoldenTotals[i][1])
        << "cell " << i;
    EXPECT_EQ(summary.stats[i].downtime_slots, kFaultedGoldenTotals[i][2])
        << "cell " << i;
    EXPECT_EQ(summary.stats[i].recoveries, kFaultedGoldenTotals[i][3])
        << "cell " << i;
  }
}

}  // namespace
}  // namespace shep
