// Integration tests: the paper's qualitative claims, end-to-end on the
// synthetic substrate (smaller trace lengths than the bench harnesses so
// the suite stays fast; the full 365-day runs live in bench/).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/strings.hpp"
#include "core/wcma.hpp"
#include "hw/energy_model.hpp"
#include "report/table.hpp"
#include "solar/synth.hpp"
#include "sweep/dynamic.hpp"
#include "sweep/sweep.hpp"

namespace shep {
namespace {

// Shared fixture: a 100-day ORNL-like trace (1-minute, volatile) and an
// 100-day PFCI-like trace (1-minute, sunny).
class PaperTrendsTest : public ::testing::Test {
 protected:
  static const PowerTrace& Ornl() {
    static const PowerTrace t = [] {
      SynthOptions opt;
      opt.days = 100;
      return SynthesizeTrace(SiteByCode("ORNL"), opt);
    }();
    return t;
  }
  static const PowerTrace& Pfci() {
    static const PowerTrace t = [] {
      SynthOptions opt;
      opt.days = 100;
      return SynthesizeTrace(SiteByCode("PFCI"), opt);
    }();
    return t;
  }
  static ParamGrid MidGrid() {
    ParamGrid g;
    for (int i = 0; i <= 10; ++i) g.alphas.push_back(i / 10.0);
    g.days = {2, 5, 10, 15, 20};
    g.ks = {1, 2, 3, 4, 5, 6};
    return g;
  }
};

TEST_F(PaperTrendsTest, AccuracyImprovesWithSamplingRate) {
  // Table III: MAPE decreases monotonically as N grows, on every site.
  for (const auto* trace : {&Ornl(), &Pfci()}) {
    double prev = 1e9;
    for (int n : {24, 48, 96, 288}) {
      const SweepContext ctx(*trace, n);
      const auto sweep = SweepWcma(ctx, MidGrid());
      const double mape = sweep.BestByMape().mean_stats.mape;
      EXPECT_LT(mape, prev) << trace->name() << " N=" << n;
      prev = mape;
    }
  }
}

TEST_F(PaperTrendsTest, SunnySiteEasierThanVolatileSite) {
  // Table III ordering: PFCI's best MAPE is well below ORNL's at N=48.
  const SweepContext ornl(Ornl(), 48);
  const SweepContext pfci(Pfci(), 48);
  const double m_ornl = SweepWcma(ornl, MidGrid()).BestByMape().mean_stats.mape;
  const double m_pfci = SweepWcma(pfci, MidGrid()).BestByMape().mean_stats.mape;
  EXPECT_LT(m_pfci, 0.75 * m_ornl);
}

TEST_F(PaperTrendsTest, MapePrimeOptimizationPicksLowerAlpha) {
  // Table II: optimizing under MAPE′ yields a smaller α than under MAPE,
  // and a larger reported error.
  const SweepContext ctx(Ornl(), 48);
  const auto sweep = SweepWcma(ctx, MidGrid());
  const auto& by_mape = sweep.BestByMape();
  const auto& by_prime = sweep.BestByMapePrime();
  EXPECT_LT(by_prime.alpha, by_mape.alpha);
  EXPECT_GT(by_prime.boundary_stats.mape, by_mape.mean_stats.mape);
}

TEST_F(PaperTrendsTest, AlphaGrowsWithSamplingRate) {
  // Table III: "as value of N approaches 288, the value of α tends to 1".
  const SweepContext c24(Ornl(), 24);
  const SweepContext c288(Ornl(), 288);
  const double a24 = SweepWcma(c24, MidGrid()).BestByMape().alpha;
  const double a288 = SweepWcma(c288, MidGrid()).BestByMape().alpha;
  EXPECT_GT(a288, a24);
  EXPECT_GE(a288, 0.8);
}

TEST_F(PaperTrendsTest, DiminishingReturnsInD) {
  // Fig. 7: the steep accuracy gain is all in the first few days of
  // history; past D ≈ 10 the curve is flat (paper: asymptotically flat;
  // on our synthetic substrate seasonal staleness can even tilt it up a
  // whisker — see EXPERIMENTS.md).  Assert: D=2 -> D=10 improves MAPE
  // noticeably, while |D=20 - D=10| is small by comparison.
  const SweepContext ctx(Ornl(), 48);
  ParamGrid g = MidGrid();
  const auto sweep = SweepWcma(ctx, g);
  const auto mape_at_d = [&](int d) {
    const auto* p = sweep.BestByMapeWithD(d);
    EXPECT_NE(p, nullptr);
    return p->mean_stats.mape;
  };
  const double d2 = mape_at_d(2);
  const double d10 = mape_at_d(10);
  const double d20 = mape_at_d(20);
  EXPECT_GT(d2 - d10, 0.005);  // first days of history matter
  EXPECT_LT(std::fabs(d20 - d10), 0.5 * (d2 - d10));  // tail is flat
}

TEST_F(PaperTrendsTest, KEqualsTwoIsNearOptimal) {
  // Table III last column: pinning K=2 costs only a whisker of MAPE (the
  // paper sees <= 0.3 points; our synthetic substrate is a little more
  // K-sensitive, so we bound the cost at 2 points — still "near optimal"
  // next to the 5-15 point swings the other parameters cause).
  for (const auto* trace : {&Ornl(), &Pfci()}) {
    const SweepContext ctx(*trace, 48);
    const auto sweep = SweepWcma(ctx, MidGrid());
    const double best = sweep.BestByMape().mean_stats.mape;
    const auto* k2 = sweep.BestByMapeWithK(2);
    ASSERT_NE(k2, nullptr);
    EXPECT_LT(k2->mean_stats.mape - best, 0.02) << trace->name();
  }
}

TEST_F(PaperTrendsTest, DynamicOracleBeatsStaticBySeveralPoints) {
  // Table V: the K+α oracle at N=48 is far below the static optimum —
  // "dynamic algorithm accuracy at N=48 is higher than static at N=288".
  const SweepContext ctx(Ornl(), 48);
  const auto dyn = EvaluateDynamic(ctx, 20, ParamGrid::Paper());
  EXPECT_LT(dyn.both_mape, 0.7 * dyn.static_mape);

  // Paper Sec. IV-C: "dynamic algorithm accuracy at N=48 is higher than
  // the accuracy of static algorithm at N=288".  On our substrate the
  // N=288 static error is somewhat lower than NREL reality (documented in
  // EXPERIMENTS.md), so we assert the softer form: the 48-slot oracle is
  // in the same band as the 288-slot static optimum, not 6x coarser as
  // the raw horizon ratio would suggest.
  const SweepContext ctx288(Ornl(), 288);
  const auto static288 =
      SweepWcma(ctx288, MidGrid()).BestByMape().mean_stats.mape;
  EXPECT_LT(dyn.both_mape, 1.5 * static288);
}

TEST_F(PaperTrendsTest, HardwareOverheadSmallAndMonotone) {
  // Fig. 6 end-to-end from a real measured op mix.
  WcmaParams p;
  p.alpha = 0.7;
  p.days = 20;
  p.slots_k = 2;
  SynthOptions opt;
  opt.days = 25;
  const auto trace = SynthesizeTrace(SiteByCode("NPCS"), opt);
  const McuPowerSpec spec;
  const CycleCosts costs;
  const auto ops = MeasureWakeupOps(p, trace, 48).full_work;
  const auto act = ComputeActivityEnergy(spec, costs, ops);
  double prev = 0.0;
  for (int n : {24, 48, 72, 96, 288}) {
    const auto b = ComputeDayBudget(spec, costs, act, n, ops);
    EXPECT_GT(b.OverheadPercent(), prev);
    prev = b.OverheadPercent();
  }
  EXPECT_LT(prev, 6.0);  // even N=288 stays near the paper's 4.85 %
}

TEST_F(PaperTrendsTest, ReportPipelineRendersSweepResults) {
  // Smoke the reporting path the bench binaries use.
  const SweepContext ctx(Pfci(), 24);
  const auto sweep = SweepWcma(ctx, ParamGrid::Coarse());
  TableBuilder t("Table III excerpt");
  t.Columns({"Data Set", "N", "alpha", "D", "K", "MAPE"});
  const auto& best = sweep.BestByMape();
  t.AddRow({sweep.dataset, std::to_string(sweep.slots_per_day),
            FormatFixed(best.alpha, 1), std::to_string(best.days_d),
            std::to_string(best.slots_k), FormatPercent(best.mean_stats.mape)});
  const auto rendered = t.ToString();
  EXPECT_NE(rendered.find("PFCI"), std::string::npos);
  EXPECT_NE(rendered.find('%'), std::string::npos);
}

// Per-site property sweep: the core Table II/III trends must hold on EVERY
// site profile, not just the two the fixture exercises in depth.
class AllSitesTrendTest : public ::testing::TestWithParam<const char*> {};

TEST_P(AllSitesTrendTest, CoreTrendsHold) {
  SynthOptions opt;
  opt.days = 70;
  const auto trace = SynthesizeTrace(SiteByCode(GetParam()), opt);

  ParamGrid grid;
  grid.alphas = {0.0, 0.2, 0.4, 0.5, 0.6, 0.7, 0.8, 1.0};
  grid.days = {2, 5, 10, 20};
  grid.ks = {1, 2, 4, 6};

  const SweepContext c48(trace, 48);
  const auto s48 = SweepWcma(c48, grid);
  const auto& best48 = s48.BestByMape();

  // Error lands in a plausible solar-prediction band and the optimum uses
  // both terms of Eq. 1.
  EXPECT_GT(best48.mean_stats.mape, 0.02) << GetParam();
  EXPECT_LT(best48.mean_stats.mape, 0.30) << GetParam();
  EXPECT_GT(best48.alpha, 0.0) << GetParam();
  EXPECT_LT(best48.alpha, 1.0) << GetParam();

  // MAPE' optimum reports higher error at lower alpha (Table II).
  const auto& prime48 = s48.BestByMapePrime();
  EXPECT_GT(prime48.boundary_stats.mape, best48.mean_stats.mape)
      << GetParam();
  EXPECT_LE(prime48.alpha, best48.alpha) << GetParam();

  // Coarser horizon is harder (Table III).
  const SweepContext c24(trace, 24);
  const auto s24 = SweepWcma(c24, grid);
  EXPECT_GT(s24.BestByMape().mean_stats.mape, best48.mean_stats.mape)
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(SixSites, AllSitesTrendTest,
                         ::testing::Values("SPMD", "ECSU", "ORNL", "HSU",
                                           "NPCS", "PFCI"));

}  // namespace
}  // namespace shep
