// Tests for common/mathutil.hpp.
#include "common/mathutil.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace shep {
namespace {

TEST(Mean, EmptyIsZero) {
  EXPECT_EQ(Mean({}), 0.0);
}

TEST(Mean, SimpleAverage) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
}

TEST(Variance, ConstantIsZero) {
  const std::vector<double> xs{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(Variance(xs), 0.0);
}

TEST(Variance, KnownValue) {
  const std::vector<double> xs{1.0, 3.0};
  EXPECT_DOUBLE_EQ(Variance(xs), 1.0);  // mean 2, deviations ±1
}

TEST(MinMax, Work) {
  const std::vector<double> xs{3.0, -1.0, 7.0, 2.0};
  EXPECT_DOUBLE_EQ(MaxValue(xs), 7.0);
  EXPECT_DOUBLE_EQ(MinValue(xs), -1.0);
  EXPECT_DOUBLE_EQ(MaxValue({}), 0.0);
  EXPECT_DOUBLE_EQ(MinValue({}), 0.0);
}

TEST(PrefixSums, InclusiveSums) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const auto ps = PrefixSums(xs);
  ASSERT_EQ(ps.size(), 3u);
  EXPECT_DOUBLE_EQ(ps[0], 1.0);
  EXPECT_DOUBLE_EQ(ps[1], 3.0);
  EXPECT_DOUBLE_EQ(ps[2], 6.0);
}

TEST(PrefixSums, EmptyInEmptyOut) {
  EXPECT_TRUE(PrefixSums({}).empty());
}

TEST(Lerp, Endpoints) {
  EXPECT_DOUBLE_EQ(Lerp(2.0, 10.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(Lerp(2.0, 10.0, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(Lerp(2.0, 10.0, 0.5), 6.0);
}

TEST(Clamp, Bounds) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(ApproxEqual, RelativeAndAbsolute) {
  EXPECT_TRUE(ApproxEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(ApproxEqual(1.0, 1.001));
  EXPECT_TRUE(ApproxEqual(1.0, 1.001, 1e-2));
  EXPECT_TRUE(ApproxEqual(0.0, 1e-13));
}

TEST(RoundToLL, Rounds) {
  EXPECT_EQ(RoundToLL(2.4), 2);
  EXPECT_EQ(RoundToLL(2.6), 3);
  EXPECT_EQ(RoundToLL(-2.6), -3);
}

TEST(WelfordMoments, MatchesTwoPassStatistics) {
  std::vector<double> xs{0.3, 0.7, 0.45, 0.9, 0.05, 0.62, 0.31};
  WelfordMoments w;
  for (double x : xs) w.Add(x);
  EXPECT_EQ(w.count, xs.size());
  EXPECT_NEAR(w.mean, Mean(xs), 1e-15);
  EXPECT_NEAR(w.variance(), Variance(xs), 1e-15);
  EXPECT_NEAR(w.stddev(), std::sqrt(Variance(xs)), 1e-15);
}

TEST(WelfordMoments, DegenerateCounts) {
  WelfordMoments w;
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  w.Add(3.25);
  EXPECT_DOUBLE_EQ(w.mean, 3.25);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);  // population variance undefined at 1.
}

TEST(WelfordMoments, SurvivesCatastrophicCancellation) {
  // The regime that killed the old sum-of-squares formula: a large mean
  // with a tiny spread over a long stream.  E[x^2] and E[x]^2 agree in all
  // stored digits, so their difference is pure rounding noise — here it
  // comes out as ZERO spread (or garbage), while Welford keeps the true
  // stddev to near machine precision.
  const double mean = 1.0e9;
  const double half_spread = 1.0e-3;
  WelfordMoments welford;
  double sum = 0.0, sq_sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = mean + (i % 2 == 0 ? half_spread : -half_spread);
    welford.Add(x);
    sum += x;
    sq_sum += x * x;
  }
  const double naive_var =
      std::max(0.0, sq_sum / n - (sum / n) * (sum / n));
  // Truth: every sample is half_spread away from the mean, up to the
  // representation error of 1e9 +/- 1e-3 itself (ulp(1e9) ~ 1.2e-7, i.e.
  // ~1e-4 relative on the spread) — Welford recovers all the information
  // the stored doubles carry.
  EXPECT_NEAR(welford.stddev(), half_spread, half_spread * 1e-3);
  // And the naive formula has genuinely lost the value (off by >50 % —
  // in practice it collapses to 0 or explodes, depending on rounding).
  EXPECT_GT(std::fabs(naive_var - half_spread * half_spread),
            0.5 * half_spread * half_spread);
}

}  // namespace
}  // namespace shep
