// Tests for common/mathutil.hpp.
#include "common/mathutil.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace shep {
namespace {

TEST(Mean, EmptyIsZero) {
  EXPECT_EQ(Mean({}), 0.0);
}

TEST(Mean, SimpleAverage) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
}

TEST(Variance, ConstantIsZero) {
  const std::vector<double> xs{3.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(Variance(xs), 0.0);
}

TEST(Variance, KnownValue) {
  const std::vector<double> xs{1.0, 3.0};
  EXPECT_DOUBLE_EQ(Variance(xs), 1.0);  // mean 2, deviations ±1
}

TEST(MinMax, Work) {
  const std::vector<double> xs{3.0, -1.0, 7.0, 2.0};
  EXPECT_DOUBLE_EQ(MaxValue(xs), 7.0);
  EXPECT_DOUBLE_EQ(MinValue(xs), -1.0);
  EXPECT_DOUBLE_EQ(MaxValue({}), 0.0);
  EXPECT_DOUBLE_EQ(MinValue({}), 0.0);
}

TEST(PrefixSums, InclusiveSums) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const auto ps = PrefixSums(xs);
  ASSERT_EQ(ps.size(), 3u);
  EXPECT_DOUBLE_EQ(ps[0], 1.0);
  EXPECT_DOUBLE_EQ(ps[1], 3.0);
  EXPECT_DOUBLE_EQ(ps[2], 6.0);
}

TEST(PrefixSums, EmptyInEmptyOut) {
  EXPECT_TRUE(PrefixSums({}).empty());
}

TEST(Lerp, Endpoints) {
  EXPECT_DOUBLE_EQ(Lerp(2.0, 10.0, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(Lerp(2.0, 10.0, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(Lerp(2.0, 10.0, 0.5), 6.0);
}

TEST(Clamp, Bounds) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(ApproxEqual, RelativeAndAbsolute) {
  EXPECT_TRUE(ApproxEqual(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(ApproxEqual(1.0, 1.001));
  EXPECT_TRUE(ApproxEqual(1.0, 1.001, 1e-2));
  EXPECT_TRUE(ApproxEqual(0.0, 1e-13));
}

TEST(RoundToLL, Rounds) {
  EXPECT_EQ(RoundToLL(2.4), 2);
  EXPECT_EQ(RoundToLL(2.6), 3);
  EXPECT_EQ(RoundToLL(-2.6), -3);
}

}  // namespace
}  // namespace shep
