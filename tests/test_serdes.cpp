// test_serdes.cpp — the hexfloat wire format at the edges of double.
//
// The distributed fleet contract says a partial that crossed a process
// boundary as text merges BIT-identically to one that stayed in memory,
// which reduces to: serdes::WriteDouble -> serdes::ReadDouble must be the
// identity on every double a run can produce.  The suites that pin the
// merge (test_fleet_distributed) exercise ordinary magnitudes; this one
// walks the representation's edges — signed zero, subnormals, extrema,
// infinities, NaN — and the NaN-sample bookkeeping that rides next to the
// doubles (FixedHistogram::nan_count preserves NaN observations as an
// exact integer precisely because "nan" text carries no payload).

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <stdexcept>

#include <gtest/gtest.h>

#include "fleet/aggregate.hpp"

namespace shep {
namespace {

double RoundTrip(double value) {
  std::ostringstream os;
  serdes::WriteDouble(os, value);
  std::istringstream is(os.str());
  return serdes::ReadDouble(is);
}

/// Bit-exact comparison: EQ on doubles would call -0.0 == +0.0 and NaN
/// unequal to itself, which is exactly the wrong tool here.
::testing::AssertionResult BitIdentical(double expected, double actual) {
  if (std::bit_cast<std::uint64_t>(expected) ==
      std::bit_cast<std::uint64_t>(actual)) {
    return ::testing::AssertionSuccess();
  }
  return ::testing::AssertionFailure()
         << std::hexfloat << expected << " round-tripped into " << actual;
}

TEST(SerdesDouble, SignedZeroKeepsItsSign) {
  EXPECT_TRUE(BitIdentical(0.0, RoundTrip(0.0)));
  EXPECT_TRUE(BitIdentical(-0.0, RoundTrip(-0.0)));
  EXPECT_TRUE(std::signbit(RoundTrip(-0.0)));
  EXPECT_FALSE(std::signbit(RoundTrip(0.0)));
}

TEST(SerdesDouble, SubnormalsRoundTripExactly) {
  using limits = std::numeric_limits<double>;
  // The smallest positive double, the largest subnormal (one ulp below
  // DBL_MIN), and a mid-range subnormal with a busy mantissa.
  const double smallest = limits::denorm_min();
  const double largest_subnormal =
      std::nextafter(limits::min(), 0.0);
  const double busy = std::bit_cast<double>(std::uint64_t{0x000F'EDCB'A987'6543});
  for (double v : {smallest, largest_subnormal, busy, -smallest, -busy}) {
    EXPECT_TRUE(BitIdentical(v, RoundTrip(v)));
  }
}

TEST(SerdesDouble, ExtremaAndNeighborsRoundTripExactly) {
  using limits = std::numeric_limits<double>;
  for (double v : {limits::max(), -limits::max(), limits::min(),
                   -limits::min(), std::nextafter(limits::max(), 0.0),
                   limits::epsilon(), 1.0 + limits::epsilon()}) {
    EXPECT_TRUE(BitIdentical(v, RoundTrip(v)));
  }
}

TEST(SerdesDouble, InfinitiesRoundTrip) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(BitIdentical(inf, RoundTrip(inf)));
  EXPECT_TRUE(BitIdentical(-inf, RoundTrip(-inf)));
}

TEST(SerdesDouble, NanRoundTripsAsNan) {
  // "nan" text carries no payload bits, and no aggregate field ever
  // merges on one — what must survive is NaN-ness itself (and NaN
  // OBSERVATIONS survive exactly, via FixedHistogram::nan_count below).
  EXPECT_TRUE(std::isnan(RoundTrip(std::numeric_limits<double>::quiet_NaN())));
  EXPECT_TRUE(std::isnan(RoundTrip(-std::numeric_limits<double>::quiet_NaN())));
}

TEST(SerdesDouble, DeterministicBitPatternSweepRoundTripsExactly) {
  // A seeded splitmix64 walk over raw bit patterns: every finite double
  // (normal or subnormal, either sign) must survive the text round trip
  // bit for bit.
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  auto next = [&state]() {
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  };
  int finite_seen = 0;
  for (int i = 0; i < 2000; ++i) {
    const double v = std::bit_cast<double>(next());
    if (!std::isfinite(v)) continue;  // NaN payloads legitimately collapse.
    ++finite_seen;
    EXPECT_TRUE(BitIdentical(v, RoundTrip(v)));
  }
  EXPECT_GT(finite_seen, 1900);  // the sweep actually exercised the space.
}

TEST(SerdesDouble, RejectsMalformedAndOverflowingTokens) {
  auto read = [](const std::string& text) {
    std::istringstream is(text);
    return serdes::ReadDouble(is);
  };
  EXPECT_THROW(read("not-a-number"), std::invalid_argument);
  EXPECT_THROW(read("1.5trailing"), std::invalid_argument);
  // Overflowed decimal: no Serialize call emits one (hexfloat never
  // overflows strtod), so it is corruption.
  EXPECT_THROW(read("1e999"), std::invalid_argument);
  EXPECT_THROW(read(""), std::invalid_argument);
  // Subnormal underflow stays accepted (parses exactly).
  EXPECT_TRUE(BitIdentical(std::numeric_limits<double>::denorm_min(),
                           read("0x0.0000000000001p-1022")));
}

TEST(SerdesMoments, ExtremeFiniteSamplesSurviveTheWire) {
  // Samples spanning the full finite range: the mean stays finite, m2
  // overflows to +inf (a value hexfloat text must carry), and the extrema
  // hold a subnormal and DBL_MAX — all of it must cross the wire bit-exactly.
  StreamingMoments m;
  m.Add(std::numeric_limits<double>::denorm_min());
  m.Add(std::numeric_limits<double>::max());
  ASSERT_TRUE(std::isinf(m.m2));
  std::ostringstream os;
  m.Serialize(os);
  std::istringstream is(os.str());
  const StreamingMoments back = StreamingMoments::Deserialize(is);
  EXPECT_EQ(back.count, m.count);
  EXPECT_TRUE(BitIdentical(m.mean, back.mean));
  EXPECT_TRUE(BitIdentical(m.m2, back.m2));
  EXPECT_TRUE(BitIdentical(m.min, back.min));
  EXPECT_TRUE(BitIdentical(m.max, back.max));
}

TEST(SerdesMoments, NanM2IsRejectedAtTheProcessBoundary) {
  // Infinite SAMPLES poison Welford's m2 to NaN; no valid run produces
  // them, so the deserializer treats a non-(m2 >= 0) token as corruption
  // rather than quietly admitting un-mergeable moments.
  StreamingMoments poisoned;
  poisoned.Add(-std::numeric_limits<double>::infinity());
  poisoned.Add(std::numeric_limits<double>::infinity());
  ASSERT_TRUE(std::isnan(poisoned.m2));
  std::ostringstream os;
  poisoned.Serialize(os);
  std::istringstream is(os.str());
  EXPECT_THROW(static_cast<void>(StreamingMoments::Deserialize(is)),
               std::invalid_argument);
}

TEST(SerdesHistogram, NanObservationsSurviveSerializationExactly) {
  // NaN samples can't sit in a bin (unordered under clamp), so Add tallies
  // them into nan_count — and THAT integer is what preserves the NaN
  // observations across the wire, bit-exactly, where a "nan" double token
  // would have lost payload and count alike.
  FixedHistogram hist(0.0, 1.0, 16);
  hist.Add(0.25);
  hist.Add(std::numeric_limits<double>::quiet_NaN());
  hist.Add(-std::numeric_limits<double>::quiet_NaN());
  hist.Add(0.75);
  hist.Add(std::nan("0x7ff"));  // payload variant counts the same.
  ASSERT_EQ(hist.nan_count(), 3u);
  ASSERT_EQ(hist.total(), 2u);

  std::ostringstream os;
  hist.Serialize(os);
  std::istringstream is(os.str());
  const FixedHistogram back = FixedHistogram::Deserialize(is);
  EXPECT_EQ(back.nan_count(), 3u);
  EXPECT_EQ(back.total(), 2u);
  EXPECT_EQ(back.bins(), hist.bins());

  // The NaN ledger merges additively like any bin and never distorts
  // quantiles.
  FixedHistogram merged(0.0, 1.0, 16);
  merged.Add(std::numeric_limits<double>::quiet_NaN());
  merged.Merge(back);
  EXPECT_EQ(merged.nan_count(), 4u);
  EXPECT_EQ(merged.total(), 2u);
  EXPECT_DOUBLE_EQ(merged.Quantile(0.5),
                   FixedHistogram(back).Quantile(0.5));
}

TEST(SerdesCell, EdgeValueCellRoundTripsThroughText) {
  // End to end at the CellAccumulator level: a cell whose node results sit
  // at the edges (DBL_MIN duty, full violation rate, a NaN histogram
  // sample) round-trips every field.
  CellAccumulator acc;
  NodeSimResult result;
  result.violation_rate = 1.0;
  result.mean_duty = std::numeric_limits<double>::min();  // smallest normal.
  result.harvested_j = 1.0;
  result.overflow_j = 0.0;
  result.mape = std::numeric_limits<double>::denorm_min();
  result.mape_points = 1;
  result.violations = 7;
  result.slots = 48;
  // Graceful-degradation channel at its edges too: an almost-always-dark
  // node whose every post-recovery slot violated.
  result.faulted = true;
  result.downtime_slots = 0xFFFFFFFFull;
  result.recoveries = 3;
  result.post_recovery_slots = 5;
  result.post_recovery_violations = 5;
  acc.Add(result);
  acc.violation_hist.Add(std::numeric_limits<double>::quiet_NaN());

  std::ostringstream os;
  acc.Serialize(os);
  std::istringstream is(os.str());
  const CellAccumulator back = CellAccumulator::Deserialize(is);
  EXPECT_EQ(back.violations, acc.violations);
  EXPECT_EQ(back.scored_slots, acc.scored_slots);
  EXPECT_EQ(back.violation_hist.nan_count(), acc.violation_hist.nan_count());
  EXPECT_TRUE(BitIdentical(acc.mape.mean, back.mape.mean));
  EXPECT_TRUE(BitIdentical(acc.mean_duty.min, back.mean_duty.min));
  EXPECT_EQ(back.downtime_slots, acc.downtime_slots);
  EXPECT_EQ(back.recoveries, acc.recoveries);
  EXPECT_TRUE(back.has_fault_stats());
  EXPECT_TRUE(BitIdentical(acc.availability.mean, back.availability.mean));
  EXPECT_TRUE(BitIdentical(acc.post_recovery_violation_rate.mean,
                           back.post_recovery_violation_rate.mean));
}

}  // namespace
}  // namespace shep
