// Tests for mgmt/duty_cycle.hpp.
#include "mgmt/duty_cycle.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace shep {
namespace {

DutyCycleConfig Config() {
  DutyCycleConfig c;
  c.slot_seconds = 1800.0;
  c.active_power_w = 0.060;
  c.sleep_power_w = 0.0;  // simplify hand calculations
  c.min_duty = 0.02;
  c.max_duty = 1.0;
  c.target_level_fraction = 0.5;
  c.level_gain = 0.0;  // pure energy-neutral mode unless a test enables it
  return c;
}

TEST(DutyCycleConfig, Validation) {
  EXPECT_NO_THROW(DutyCycleConfig{}.Validate());
  auto c = Config();
  c.slot_seconds = 0.0;
  EXPECT_THROW(c.Validate(), std::invalid_argument);
  c = Config();
  c.sleep_power_w = 1.0;  // above active
  EXPECT_THROW(c.Validate(), std::invalid_argument);
  c = Config();
  c.min_duty = 0.9;
  c.max_duty = 0.5;
  EXPECT_THROW(c.Validate(), std::invalid_argument);
  c = Config();
  c.level_gain = 2.0;
  EXPECT_THROW(c.Validate(), std::invalid_argument);
}

TEST(DutyCycleController, EnergyNeutralDuty) {
  // Active energy per slot at duty 1: 0.06 W × 1800 s = 108 J.
  // Predicted 54 J -> duty 0.5.
  DutyCycleController ctl(Config());
  EXPECT_NEAR(ctl.DutyForSlot(54.0, 50.0, 100.0), 0.5, 1e-12);
}

TEST(DutyCycleController, ClampsToBounds) {
  DutyCycleController ctl(Config());
  EXPECT_DOUBLE_EQ(ctl.DutyForSlot(0.0, 50.0, 100.0), 0.02);   // floor
  EXPECT_DOUBLE_EQ(ctl.DutyForSlot(500.0, 50.0, 100.0), 1.0);  // ceiling
}

TEST(DutyCycleController, LevelGainSteersTowardSetpoint) {
  auto c = Config();
  c.level_gain = 0.1;
  DutyCycleController ctl(c);
  const double at_setpoint = ctl.DutyForSlot(54.0, 50.0, 100.0);
  const double above = ctl.DutyForSlot(54.0, 90.0, 100.0);
  const double below = ctl.DutyForSlot(54.0, 10.0, 100.0);
  EXPECT_GT(above, at_setpoint);  // surplus -> spend more
  EXPECT_LT(below, at_setpoint);  // deficit -> conserve
}

TEST(DutyCycleController, ConsumptionMatchesDuty) {
  auto c = Config();
  c.sleep_power_w = 0.001;
  DutyCycleController ctl(c);
  // duty 0: sleep only.
  EXPECT_NEAR(ctl.ConsumptionJ(0.0), 0.001 * 1800.0, 1e-12);
  // duty 1: full active power.
  EXPECT_NEAR(ctl.ConsumptionJ(1.0), 0.060 * 1800.0, 1e-12);
  // halfway.
  EXPECT_NEAR(ctl.ConsumptionJ(0.5), (0.001 + 0.5 * 0.059) * 1800.0, 1e-12);
}

TEST(DutyCycleController, RoundTripEnergyNeutrality) {
  // The duty chosen for a prediction consumes exactly the predicted energy
  // (within bounds) — the controller's defining property.
  auto c = Config();
  c.sleep_power_w = 0.002;
  DutyCycleController ctl(c);
  for (double predicted : {20.0, 54.0, 80.0}) {
    const double duty = ctl.DutyForSlot(predicted, 50.0, 100.0);
    if (duty > c.min_duty && duty < c.max_duty) {
      EXPECT_NEAR(ctl.ConsumptionJ(duty), predicted, 1e-9);
    }
  }
}

TEST(DutyCycleController, InputValidation) {
  DutyCycleController ctl(Config());
  EXPECT_THROW(ctl.DutyForSlot(-1.0, 50.0, 100.0), std::invalid_argument);
  EXPECT_THROW(ctl.DutyForSlot(10.0, -1.0, 100.0), std::invalid_argument);
  EXPECT_THROW(ctl.DutyForSlot(10.0, 101.0, 100.0), std::invalid_argument);
  EXPECT_THROW(ctl.DutyForSlot(10.0, 50.0, 0.0), std::invalid_argument);
  EXPECT_THROW(ctl.ConsumptionJ(1.5), std::invalid_argument);
}

}  // namespace
}  // namespace shep
