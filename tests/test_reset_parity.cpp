// Reset() parity: a predictor that is reset and re-trained must be
// indistinguishable from a freshly constructed one on the same trace.
// Guards the state-clearing path of both the double-precision and the
// fixed-point WCMA, which no other suite exercises end-to-end.
#include <gtest/gtest.h>

#include <vector>

#include "core/wcma.hpp"
#include "core/wcma_fixed.hpp"
#include "hw/costed_fixed.hpp"
#include "hw/vm_predictor.hpp"
#include "solar/sites.hpp"
#include "solar/synth.hpp"
#include "timeseries/slotting.hpp"

namespace shep {
namespace {

constexpr int kSlotsPerDay = 24;

const SlotSeries& Series() {
  static const SlotSeries* series = [] {
    SynthOptions opt;
    opt.days = 12;
    static const PowerTrace trace = SynthesizeTrace(SiteByCode("ECSU"), opt);
    return new SlotSeries(trace, kSlotsPerDay);
  }();
  return *series;
}

// Runs the predictor over the whole series and returns every prediction.
std::vector<double> Predictions(Predictor& p) {
  const auto& s = Series();
  std::vector<double> out;
  out.reserve(s.size());
  for (std::size_t g = 0; g < s.size(); ++g) {
    p.Observe(s.boundary(g));
    out.push_back(p.PredictNext());
  }
  return out;
}

TEST(ResetParity, WcmaMatchesFreshPredictor) {
  WcmaParams params;
  params.days = 5;
  Wcma reused(params, kSlotsPerDay);
  Predictions(reused);  // dirty the state with a full pass
  reused.Reset();
  EXPECT_FALSE(reused.Ready());

  Wcma fresh(params, kSlotsPerDay);
  const auto got = Predictions(reused);
  const auto want = Predictions(fresh);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i], want[i]) << "prediction " << i;
  }
}

TEST(ResetParity, WcmaUniformWeightingMatchesFreshPredictor) {
  WcmaParams params;
  params.days = 5;
  Wcma reused(params, kSlotsPerDay, WcmaWeighting::kUniform);
  Predictions(reused);
  reused.Reset();

  Wcma fresh(params, kSlotsPerDay, WcmaWeighting::kUniform);
  const auto got = Predictions(reused);
  const auto want = Predictions(fresh);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i], want[i]) << "prediction " << i;
  }
}

TEST(ResetParity, FixedWcmaMatchesFreshPredictor) {
  WcmaParams params;
  params.days = 5;
  FixedWcma reused(params, kSlotsPerDay);
  Predictions(reused);
  reused.Reset();
  EXPECT_FALSE(reused.Ready());

  FixedWcma fresh(params, kSlotsPerDay);
  const auto got = Predictions(reused);
  const auto want = Predictions(fresh);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    // Fixed-point arithmetic is deterministic: bit-identical, not just close.
    EXPECT_DOUBLE_EQ(got[i], want[i]) << "prediction " << i;
  }
}

TEST(ResetParity, VmWcmaMatchesFreshPredictor) {
  WcmaParams params;
  params.days = 5;
  VmWcmaPredictor reused(params, kSlotsPerDay);
  Predictions(reused);  // dirty the host state, the VM memory, the counters
  reused.Reset();
  EXPECT_FALSE(reused.Ready());

  VmWcmaPredictor fresh(params, kSlotsPerDay);
  const auto got = Predictions(reused);
  const auto want = Predictions(fresh);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    // Identical instruction streams on identical inputs: bit-identical.
    // (VM data memory persists across runs by design, but every input word
    // the routine reads is re-poked each wake-up, so stale state from the
    // pre-Reset pass must not leak through.)
    EXPECT_DOUBLE_EQ(got[i], want[i]) << "prediction " << i;
  }
}

TEST(ResetParity, VmWcmaResetClearsCycleCounters) {
  WcmaParams params;
  params.days = 5;
  VmWcmaPredictor p(params, kSlotsPerDay);
  Predictions(p);
  ASSERT_GT(p.predict_calls(), 0u);
  ASSERT_GT(p.vm_runs(), 0u);
  ASSERT_GT(p.ComputeCost().cycles, 0.0);
  ASSERT_GT(p.ComputeCost().ops, 0u);
  ASSERT_GT(p.last_cycles(), 0.0);

  p.Reset();
  EXPECT_EQ(p.predict_calls(), 0u);
  EXPECT_EQ(p.vm_runs(), 0u);
  EXPECT_EQ(p.ComputeCost().cycles, 0.0);
  EXPECT_EQ(p.ComputeCost().ops, 0u);
  EXPECT_EQ(p.ComputeCost().predictions, 0u);
  EXPECT_EQ(p.last_cycles(), 0.0);
  EXPECT_EQ(p.total_ops().total(), 0u);
}

TEST(ResetParity, CostedFixedWcmaMatchesBareFixedWcma) {
  // The hw wrapper must not perturb the prediction stream it forwards, and
  // its cost report must clear on Reset like the inner counters do.
  WcmaParams params;
  params.days = 5;
  CostedFixedWcma wrapped(params, kSlotsPerDay);
  FixedWcma bare(params, kSlotsPerDay);
  const auto got = Predictions(wrapped);
  const auto want = Predictions(bare);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i], want[i]) << "prediction " << i;
  }
  ASSERT_GT(wrapped.ComputeCost().cycles, 0.0);
  ASSERT_GT(wrapped.ComputeCost().predictions, 0u);
  wrapped.Reset();
  EXPECT_EQ(wrapped.ComputeCost().cycles, 0.0);
  EXPECT_EQ(wrapped.ComputeCost().ops, 0u);
  EXPECT_EQ(wrapped.ComputeCost().predictions, 0u);
}

TEST(ResetParity, FixedWcmaResetClearsOpCounters) {
  WcmaParams params;
  params.days = 5;
  FixedWcma p(params, kSlotsPerDay);
  Predictions(p);
  ASSERT_GT(p.observe_calls(), 0u);
  ASSERT_GT(p.predict_calls(), 0u);

  p.Reset();
  EXPECT_EQ(p.observe_calls(), 0u);
  EXPECT_EQ(p.predict_calls(), 0u);
  EXPECT_EQ(p.observe_ops().add + p.observe_ops().mul + p.observe_ops().div +
                p.observe_ops().load + p.observe_ops().store +
                p.observe_ops().branch,
            0u);
  EXPECT_EQ(p.predict_ops().add + p.predict_ops().mul + p.predict_ops().div +
                p.predict_ops().load + p.predict_ops().store +
                p.predict_ops().branch,
            0u);
}

}  // namespace
}  // namespace shep
