// Tests for core/wcma_fixed.hpp — the MCU build of the predictor.
#include "core/wcma_fixed.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/predictor.hpp"
#include "core/wcma.hpp"
#include "solar/synth.hpp"

namespace shep {
namespace {

SlotSeries MakeSeries(const char* site, int n, std::size_t days) {
  SynthOptions opt;
  opt.days = days;
  const auto trace = SynthesizeTrace(SiteByCode(site), opt);
  return SlotSeries(trace, n);
}

TEST(FixedWcma, MatchesDoubleReferenceOnRealTrace) {
  // DESIGN.md §5 fixed-point ablation: over in-ROI slots the Q16.16 build
  // must track the double build within 1 % of the trace peak.
  const auto series = MakeSeries("ECSU", 48, 30);
  WcmaParams p;
  p.alpha = 0.7;
  p.days = 5;
  p.slots_k = 3;
  Wcma ref(p, 48);
  FixedWcma fx(p, 48);
  const double peak = series.peak_mean();
  // Skip day 0 (warm-up Φ weighting differs by design; see wcma_fixed.hpp).
  for (std::size_t g = 0; g < series.size(); ++g) {
    ref.Observe(series.boundary(g));
    fx.Observe(series.boundary(g));
    if (g < series.slots_per_day()) continue;
    const double a = ref.PredictNext();
    const double b = fx.PredictNext();
    ASSERT_NEAR(a, b, 0.01 * peak + 1e-3) << "g=" << g;
  }
}

TEST(FixedWcma, CountsDivisionsPerPrediction) {
  // Steady-state predict: 1 μ division + K η divisions + 1 Φ division.
  const auto series = MakeSeries("PFCI", 24, 8);
  WcmaParams p;
  p.alpha = 0.7;
  p.days = 3;
  p.slots_k = 4;
  FixedWcma fx(p, 24);
  // Warm past history fill and into mid-afternoon (so the night guard
  // doesn't skip η divides): observe 5 days then predict at 15:00.
  std::size_t g = 0;
  for (; g < 5u * 24u + 15u; ++g) fx.Observe(series.boundary(g));
  (void)fx.PredictNext();
  EXPECT_EQ(fx.last_predict_ops().div, 1u + 4u + 1u);
}

TEST(FixedWcma, AlphaOnePredictIsNearlyFree) {
  const auto series = MakeSeries("PFCI", 24, 6);
  WcmaParams p;
  p.alpha = 1.0;
  p.days = 3;
  p.slots_k = 4;
  FixedWcma fx(p, 24);
  for (std::size_t g = 0; g < 5u * 24u; ++g) fx.Observe(series.boundary(g));
  (void)fx.PredictNext();
  EXPECT_EQ(fx.last_predict_ops().div, 0u);
  EXPECT_EQ(fx.last_predict_ops().mul, 0u);
}

TEST(FixedWcma, AlphaZeroSkipsBlendMultiplies) {
  const auto series = MakeSeries("PFCI", 24, 6);
  auto ops_for = [&](double alpha) {
    WcmaParams p;
    p.alpha = alpha;
    p.days = 3;
    p.slots_k = 4;
    FixedWcma fx(p, 24);
    for (std::size_t g = 0; g < 5u * 24u + 15u; ++g) {
      fx.Observe(series.boundary(g));
    }
    (void)fx.PredictNext();
    return fx.last_predict_ops();
  };
  const auto at_zero = ops_for(0.0);
  const auto at_mid = ops_for(0.7);
  EXPECT_LT(at_zero.mul, at_mid.mul);
  EXPECT_EQ(at_zero.div, at_mid.div);
}

TEST(FixedWcma, OpsGrowMonotonicallyWithK) {
  // The mechanism behind Table IV: each extra K slot adds one software
  // division to every prediction.
  const auto series = MakeSeries("NPCS", 24, 8);
  std::uint64_t prev_div = 0;
  for (int k = 1; k <= 6; ++k) {
    WcmaParams p;
    p.alpha = 0.7;
    p.days = 3;
    p.slots_k = k;
    FixedWcma fx(p, 24);
    // Observe up to 15:00 so all K <= 6 conditioning slots (9:00-14:00)
    // are daylit and none of the η divisions is skipped by the night
    // guard.
    for (std::size_t g = 0; g < 6u * 24u + 15u; ++g) {
      fx.Observe(series.boundary(g));
    }
    (void)fx.PredictNext();
    const auto divs = fx.last_predict_ops().div;
    if (k > 1) {
      EXPECT_EQ(divs, prev_div + 1) << "K=" << k;
    }
    prev_div = divs;
  }
}

TEST(FixedWcma, ObserveAmortisesDayRollover) {
  const auto series = MakeSeries("NPCS", 24, 8);
  WcmaParams p;
  p.days = 3;
  FixedWcma fx(p, 24);
  for (std::size_t g = 0; g < series.size(); ++g) {
    fx.Observe(series.boundary(g));
  }
  EXPECT_EQ(fx.observe_calls(), series.size());
  // Rollover stores: every slot stores its sample + the recent window; day
  // ends add the matrix row copy.  Just sanity-check the magnitude is a
  // handful of ops per call, not O(D·N).
  const double stores_per_call =
      static_cast<double>(fx.observe_ops().store) /
      static_cast<double>(fx.observe_calls());
  EXPECT_LT(stores_per_call, 8.0);
  EXPECT_GT(stores_per_call, 2.0);
}

TEST(FixedWcma, ReadyAndResetLifecycle) {
  WcmaParams p;
  p.days = 2;
  p.slots_k = 1;
  FixedWcma fx(p, 4);
  for (int i = 0; i < 8; ++i) fx.Observe(0.5);
  EXPECT_TRUE(fx.Ready());
  EXPECT_GT(fx.observe_ops().store, 0u);
  fx.Reset();
  EXPECT_FALSE(fx.Ready());
  EXPECT_EQ(fx.observe_ops().store, 0u);
  EXPECT_EQ(fx.observe_calls(), 0u);
  EXPECT_THROW(fx.PredictNext(), std::invalid_argument);
}

TEST(FixedWcma, PredictionsNonNegative) {
  const auto series = MakeSeries("ORNL", 48, 12);
  WcmaParams p;
  p.alpha = 0.3;
  p.days = 4;
  p.slots_k = 3;
  FixedWcma fx(p, 48);
  for (std::size_t g = 0; g < series.size(); ++g) {
    fx.Observe(series.boundary(g));
    ASSERT_GE(fx.PredictNext(), 0.0) << "g=" << g;
  }
}

TEST(FixedWcma, MapeCloseToDoubleImplementation) {
  // End-to-end: the deployed fixed-point predictor achieves essentially
  // the same MAPE as the evaluation-time double predictor.
  const auto series = MakeSeries("HSU", 48, 60);
  WcmaParams p;
  p.alpha = 0.7;
  p.days = 10;
  p.slots_k = 2;
  Wcma ref(p, 48);
  FixedWcma fx(p, 48);
  RoiFilter filter;
  filter.first_day = 10;
  const auto ref_stats =
      ScorePredictor(ref, series, ErrorTarget::kSlotMean, filter);
  const auto fx_stats =
      ScorePredictor(fx, series, ErrorTarget::kSlotMean, filter);
  ASSERT_TRUE(ref_stats.valid());
  ASSERT_TRUE(fx_stats.valid());
  EXPECT_NEAR(fx_stats.mape, ref_stats.mape, 0.005);
}

TEST(FixedWcma, NameMentionsParameters) {
  WcmaParams p;
  p.alpha = 0.6;
  p.days = 12;
  p.slots_k = 2;
  FixedWcma fx(p, 24);
  EXPECT_NE(fx.Name().find("FixedWCMA"), std::string::npos);
  EXPECT_NE(fx.Name().find("12"), std::string::npos);
}

}  // namespace
}  // namespace shep
