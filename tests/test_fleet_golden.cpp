// Golden integration test: a small fixed fleet (2 sites × 3 predictors ×
// 2 storage tiers × 3 replicas) with its exact expected aggregates
// committed as a fixture.  Existence checks ("it ran") let value
// regressions through; this suite fails on them instead — any refactor of
// the scenario expansion, seed derivation, runner, node simulation,
// accumulator arithmetic, or report formatting that changes a single
// reported digit shows up as a CSV diff against the fixture below.
//
// The fixture is the CSV rendering (6 significant decimals for ratios, one
// for cycle counts), which deliberately absorbs sub-1e-6 noise from libm
// differences, plus the exact integer totals per cell.  To regenerate
// after an INTENDED behavior change: build, run the identical spec through
// RunFleet, and paste summary.ToCsv() here — then justify the diff in the
// commit message.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <utility>

#include "fleet/runner.hpp"

namespace shep {
namespace {

// KEEP IN SYNC with the fixture: any spec change invalidates the values.
ScenarioSpec GoldenSpec() {
  ScenarioSpec spec;
  spec.name = "golden";
  spec.sites = {"HSU", "PFCI"};
  PredictorSpec wcma;
  wcma.kind = PredictorKind::kWcma;
  wcma.wcma.alpha = 0.7;
  wcma.wcma.days = 10;
  wcma.wcma.slots_k = 3;
  PredictorSpec fixed = wcma;
  fixed.kind = PredictorKind::kWcmaFixed;
  PredictorSpec persistence;
  persistence.kind = PredictorKind::kPersistence;
  spec.predictors = {wcma, fixed, persistence};
  spec.storage_tiers_j = {1500.0, 6000.0};
  spec.nodes_per_cell = 3;
  spec.days = 30;
  spec.slots_per_day = 48;
  spec.seed = 2026;
  spec.node.duty.active_power_w = 0.40;
  spec.node.warmup_days = 20;
  spec.initial_level_jitter = 0.2;
  return spec;
}

// The committed expectation (generated from this exact spec; see the file
// comment for the regeneration recipe).  Note the fixture's own story: the
// FixedWCMA rows reproduce the float rows to 6 decimals on accuracy AND
// carry the MCU-cost columns the float rows mark n/a, while the one
// wasted_harvest digit that differs (PFCI/6000: ...678 vs ...679) is the
// genuine Q16.16 quantisation residue propagating through the store.
constexpr const char* kGoldenCsv =
    "site,predictor,storage_j,nodes,viol_mean,viol_p50,viol_p95,viol_max,mean"
    "_duty,wasted_harvest,min_soc,mape,cyc_mean,cyc_p95,ops_mean\n"
    "HSU,WCMA,1500,3,0.286013,0.400391,0.402923,0.402923,0.270596,0.066947,0."
    "000000,0.134617,n/a,n/a,n/a\n"
    "HSU,WCMA,6000,3,0.000000,0.000000,0.000000,0.000000,0.276324,0.001881,0."
    "215352,0.134617,n/a,n/a,n/a\n"
    "HSU,FixedWCMA,1500,3,0.286013,0.400391,0.402923,0.402923,0.270596,0.0669"
    "47,0.000000,0.134617,1836.2,1838.0,32.3\n"
    "HSU,FixedWCMA,6000,3,0.000000,0.000000,0.000000,0.000000,0.276324,0.0018"
    "81,0.215362,0.134617,1836.2,1838.0,32.3\n"
    "HSU,Persistence,1500,3,0.395268,0.486328,0.492693,0.492693,0.267856,0.07"
    "9543,0.000000,0.206190,n/a,n/a,n/a\n"
    "HSU,Persistence,6000,3,0.000000,0.000000,0.000000,0.000000,0.275531,0.00"
    "5289,0.217473,0.206190,n/a,n/a,n/a\n"
    "PFCI,WCMA,1500,3,0.136395,0.103516,0.240084,0.240084,0.343943,0.219753,0"
    ".000000,0.081986,n/a,n/a,n/a\n"
    "PFCI,WCMA,6000,3,0.000000,0.000000,0.000000,0.000000,0.373225,0.137678,0"
    ".265148,0.081986,n/a,n/a,n/a\n"
    "PFCI,FixedWCMA,1500,3,0.136395,0.103516,0.240084,0.240084,0.343943,0.219"
    "753,0.000000,0.081986,1868.9,1869.6,32.4\n"
    "PFCI,FixedWCMA,6000,3,0.000000,0.000000,0.000000,0.000000,0.373225,0.137"
    "679,0.265158,0.081986,1868.9,1869.6,32.4\n"
    "PFCI,Persistence,1500,3,0.270007,0.255859,0.340292,0.340292,0.340113,0.2"
    "30333,0.000000,0.136708,n/a,n/a,n/a\n"
    "PFCI,Persistence,6000,3,0.000000,0.000000,0.000000,0.000000,0.366344,0.1"
    "53593,0.305982,0.136708,n/a,n/a,n/a\n";

// (violations, scored_slots) per cell, in cell order.  scored_slots is
// structural — 3 nodes × ((30 − 20) × 48 − 1) — but violations are genuine
// simulation outcomes: integer threshold crossings, exact by construction.
constexpr std::array<std::pair<std::uint64_t, std::uint64_t>, 12>
    kGoldenTotals{{
        {411u, 1437u},  // HSU WCMA 1500
        {0u, 1437u},    // HSU WCMA 6000
        {411u, 1437u},  // HSU FixedWCMA 1500
        {0u, 1437u},    // HSU FixedWCMA 6000
        {568u, 1437u},  // HSU Persistence 1500
        {0u, 1437u},    // HSU Persistence 6000
        {196u, 1437u},  // PFCI WCMA 1500
        {0u, 1437u},    // PFCI WCMA 6000
        {196u, 1437u},  // PFCI FixedWCMA 1500
        {0u, 1437u},    // PFCI FixedWCMA 6000
        {388u, 1437u},  // PFCI Persistence 1500
        {0u, 1437u},    // PFCI Persistence 6000
    }};

TEST(FleetGolden, CsvMatchesCommittedFixture) {
  const FleetSummary summary = RunFleet(GoldenSpec());
  EXPECT_EQ(summary.ToCsv(), kGoldenCsv);
}

TEST(FleetGolden, IntegerTotalsMatchCommittedFixture) {
  const FleetSummary summary = RunFleet(GoldenSpec());
  ASSERT_EQ(summary.stats.size(), kGoldenTotals.size());
  for (std::size_t i = 0; i < kGoldenTotals.size(); ++i) {
    EXPECT_EQ(summary.stats[i].violations, kGoldenTotals[i].first)
        << "cell " << i << " (" << summary.cells[i].site_code << " "
        << summary.cells[i].predictor_label << " "
        << summary.cells[i].storage_j << ")";
    EXPECT_EQ(summary.stats[i].scored_slots, kGoldenTotals[i].second)
        << "cell " << i;
  }
}

}  // namespace
}  // namespace shep
