// Tests for core/fixed_point.hpp — Q16.16 arithmetic.
#include "core/fixed_point.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"

namespace shep {
namespace {

constexpr double kResolution = 1.0 / 65536.0;

TEST(Fx, RoundTripsSmallValues) {
  for (double v : {0.0, 1.0, -1.0, 0.5, 3.14159, -2.71828, 1000.0}) {
    EXPECT_NEAR(Fx::FromDouble(v).ToDouble(), v, kResolution);
  }
}

TEST(Fx, OneHasExpectedRaw) {
  EXPECT_EQ(Fx::One().raw(), 65536);
  EXPECT_EQ(Fx::Zero().raw(), 0);
  EXPECT_EQ(Fx::FromInt(3).raw(), 3 * 65536);
}

TEST(Fx, AdditionAndSubtraction) {
  const Fx a = Fx::FromDouble(1.25);
  const Fx b = Fx::FromDouble(2.5);
  EXPECT_NEAR((a + b).ToDouble(), 3.75, kResolution);
  EXPECT_NEAR((a - b).ToDouble(), -1.25, kResolution);
}

TEST(Fx, Multiplication) {
  const Fx a = Fx::FromDouble(1.5);
  const Fx b = Fx::FromDouble(2.0);
  EXPECT_NEAR((a * b).ToDouble(), 3.0, 2 * kResolution);
  EXPECT_NEAR((a * Fx::Zero()).ToDouble(), 0.0, kResolution);
  // Negative operand.
  EXPECT_NEAR((Fx::FromDouble(-1.5) * b).ToDouble(), -3.0, 2 * kResolution);
}

TEST(Fx, Division) {
  const Fx a = Fx::FromDouble(3.0);
  const Fx b = Fx::FromDouble(2.0);
  EXPECT_NEAR((a / b).ToDouble(), 1.5, 2 * kResolution);
  EXPECT_NEAR((b / a).ToDouble(), 2.0 / 3.0, 2 * kResolution);
}

TEST(Fx, DivisionByZeroSaturates) {
  EXPECT_EQ((Fx::One() / Fx::Zero()).raw(),
            std::numeric_limits<std::int32_t>::max());
  EXPECT_EQ((Fx::FromInt(-1) / Fx::Zero()).raw(),
            std::numeric_limits<std::int32_t>::min());
}

TEST(Fx, AdditionSaturatesInsteadOfWrapping) {
  const Fx big = Fx::FromDouble(30000.0);
  const Fx sum = big + big;
  EXPECT_EQ(sum.raw(), std::numeric_limits<std::int32_t>::max());
  const Fx neg = Fx::FromDouble(-30000.0);
  EXPECT_EQ((neg + neg).raw(), std::numeric_limits<std::int32_t>::min());
}

TEST(Fx, MultiplicationSaturates) {
  const Fx big = Fx::FromDouble(1000.0);
  EXPECT_EQ((big * big).raw(), std::numeric_limits<std::int32_t>::max());
}

TEST(Fx, FromDoubleSaturatesAtFormatLimits) {
  EXPECT_EQ(Fx::FromDouble(1e9).raw(),
            std::numeric_limits<std::int32_t>::max());
  EXPECT_EQ(Fx::FromDouble(-1e9).raw(),
            std::numeric_limits<std::int32_t>::min());
}

TEST(Fx, Comparisons) {
  const Fx a = Fx::FromDouble(1.0);
  const Fx b = Fx::FromDouble(2.0);
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b > a);
  EXPECT_TRUE(a <= a);
  EXPECT_TRUE(a >= a);
  EXPECT_TRUE(a == Fx::FromDouble(1.0));
}

// Property: random in-range arithmetic tracks double arithmetic within the
// format's quantisation error.
TEST(FxProperty, RandomArithmeticTracksDoubles) {
  Rng rng(321);
  for (int i = 0; i < 20000; ++i) {
    const double a = rng.Uniform(-100.0, 100.0);
    const double b = rng.Uniform(-100.0, 100.0);
    const Fx fa = Fx::FromDouble(a);
    const Fx fb = Fx::FromDouble(b);
    EXPECT_NEAR((fa + fb).ToDouble(), a + b, 2 * kResolution);
    EXPECT_NEAR((fa - fb).ToDouble(), a - b, 2 * kResolution);
    // Product magnitude <= 10000, well in range; error scales with |a|+|b|.
    EXPECT_NEAR((fa * fb).ToDouble(), a * b,
                (std::fabs(a) + std::fabs(b) + 2) * kResolution);
    if (std::fabs(b) > 0.01) {
      EXPECT_NEAR((fa / fb).ToDouble(), a / b,
                  (std::fabs(a / b) + 2) * kResolution / std::fabs(b) +
                      2 * kResolution);
    }
  }
}

// Property: brightness-ratio style computations (the predictor's η) stay
// accurate in the typical solar range.
TEST(FxProperty, EtaRatiosAccurateInSolarRange) {
  Rng rng(99);
  for (int i = 0; i < 5000; ++i) {
    const double sample = rng.Uniform(0.05, 1.6);  // watts
    const double mu = rng.Uniform(0.05, 1.6);
    const double eta = sample / mu;
    const double fx_eta =
        (Fx::FromDouble(sample) / Fx::FromDouble(mu)).ToDouble();
    EXPECT_NEAR(fx_eta, eta, 0.01 * eta + 1e-3);
  }
}

}  // namespace
}  // namespace shep
